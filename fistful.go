// Package fistful reproduces "A Fistful of Bitcoins: Characterizing
// Payments Among Men with No Names" (Meiklejohn et al., IMC 2013) on a
// synthetic Bitcoin economy.
//
// The package is the public facade over the substrates in internal/: one
// call builds the full measurement pipeline — generate an economy, index
// the chain, run Heuristic 1 and the refined Heuristic 2, bootstrap the
// Satoshi-Dice exemption from tags, and name clusters — and per-experiment
// functions regenerate every table and figure in the paper's evaluation.
//
//	p, err := fistful.New(ctx, fistful.DefaultConfig(), fistful.Options{})
//	fmt.Print(p.Table2().Render())
//
// Every construction path goes through New, parameterized by a Source:
// generate an economy, reuse an existing world, stream a framed chain file,
// or — for the long-running daemon, via NewServer — follow a live p2p node.
package fistful

import (
	"context"
	"fmt"

	"repro/internal/chain"
	"repro/internal/cluster"
	"repro/internal/econ"
	"repro/internal/p2p"
	"repro/internal/par"
	"repro/internal/tags"
	"repro/internal/txgraph"
)

// Config re-exports the economy configuration.
type Config = econ.Config

// DefaultConfig returns the full-experiment configuration.
func DefaultConfig() Config { return econ.DefaultConfig() }

// SmallConfig returns a fast, reduced configuration for tests and demos.
func SmallConfig() Config { return econ.Small() }

// sourceKind discriminates where the chain under measurement comes from.
type sourceKind int

const (
	srcGenerate       sourceKind = iota // generate an economy in memory
	srcGenerateToFile                   // generate, also writing the framed chain file
	srcWorld                            // an existing world's resident chain
	srcWorldChainFile                   // an existing world, graph streamed from its chain file
	srcChainFile                        // regenerate the world, graph streamed from the file
	srcNode                             // a live p2p node (serving only)
)

// Source says where the chain under measurement comes from. The zero value
// generates a fresh economy in memory; the constructors below cover every
// other origin. Batch pipelines (New) accept every source except a live
// node, which only makes sense for the long-running daemon (NewServer).
type Source struct {
	kind      sourceKind
	world     *econ.World
	chainFile string
	node      *p2p.Node
}

// SourceGenerate generates a fresh economy in memory — the default.
func SourceGenerate() Source { return Source{} }

// SourceGenerateToFile generates a fresh economy while writing the framed
// chain file to path, then builds the graph by streaming that file back, so
// the chain under measurement round-trips through disk end to end.
func SourceGenerateToFile(path string) Source {
	return Source{kind: srcGenerateToFile, chainFile: path}
}

// SourceWorld measures an existing world's resident chain.
func SourceWorld(w *econ.World) Source { return Source{kind: srcWorld, world: w} }

// SourceWorldChainFile measures an existing world, building the graph by
// streaming the framed chain file at path, which must hold the same chain
// (the height and tip cross-check rejects a stale or mismatched file).
func SourceWorldChainFile(w *econ.World, path string) Source {
	return Source{kind: srcWorldChainFile, world: w, chainFile: path}
}

// SourceChainFile streams an existing framed chain file (a previous
// `fistful generate -out` run). The world — the ground truth the
// experiments compare against — is regenerated from the config passed to
// New, which must be the configuration the file was generated with.
func SourceChainFile(path string) Source {
	return Source{kind: srcChainFile, chainFile: path}
}

// SourceNode follows a live p2p node's validated chain. Only NewServer
// accepts it: a batch pipeline needs a finite chain, a node never finishes.
func SourceNode(n *p2p.Node) Source { return Source{kind: srcNode, node: n} }

// Options tunes how the pipeline executes. The zero value generates a fresh
// economy with one worker per CPU everywhere.
type Options struct {
	// Source says where the chain comes from; the zero value generates a
	// fresh economy in memory.
	Source Source

	// Parallelism is the total worker budget for the pipeline: the economy
	// generator's block-seal signing fan-out (unless the config pins its
	// own SignWorkers), the graph build pre-pass and the sharded
	// Heuristic 1 use it directly, and stages that fan out (the H2
	// branches, the evasion study's levels) divide it among their
	// concurrent branches (par.Split) rather than multiplying it. <= 0
	// means one worker per CPU; 1 forces fully sequential execution.
	// Results are byte-identical for every setting.
	Parallelism int

	// ChainFile is the deprecated spelling of SourceGenerateToFile (with a
	// generate source) or SourceWorldChainFile (with a world source); it is
	// folded into Source when Source is the zero value or SourceWorld.
	//
	// Deprecated: set Source instead.
	ChainFile string
}

// resolveSource folds the deprecated ChainFile field into the Source.
func (o Options) resolveSource() Source {
	src := o.Source
	if o.ChainFile == "" {
		return src
	}
	switch src.kind {
	case srcGenerate:
		src = SourceGenerateToFile(o.ChainFile)
	case srcWorld:
		src = SourceWorldChainFile(src.world, o.ChainFile)
	}
	return src
}

// Pipeline holds every stage of the measurement pipeline, built once and
// shared by the experiments.
type Pipeline struct {
	World *econ.World
	Graph *txgraph.Graph

	// Parallelism is the resolved worker count the pipeline was built with;
	// the experiments reuse it for their own fan-out.
	Parallelism int

	// Tags combines the researcher's own-transaction tags with the public
	// (tag-site and forum) tags, as the study did.
	Tags *tags.Store

	// H1 is the multi-input clustering (Heuristic 1 only).
	H1 *cluster.Clustering
	// NamingH1 names the H1 clusters; it bootstraps the dice set.
	NamingH1 *tags.Naming

	// Dice is the Satoshi-Dice address set: every address in an H1 cluster
	// named as a dice-style gambling service.
	Dice map[txgraph.AddrID]bool

	// Naive is Heuristic 2 without refinements (Section 4.1's first
	// attempt); it exhibits the super-cluster.
	Naive *cluster.Clustering
	// Refined is the final clustering used for all Section 5 analysis.
	Refined *cluster.Clustering
	// Naming names the refined clusters.
	Naming *tags.Naming

	// Owners is the ground-truth owner of every address (dense by AddrID),
	// -1 where unknown.
	Owners []int32
}

// New builds the full measurement pipeline from whatever chain source the
// options select. ctx cancels generation between blocks and the pipeline
// stages between fan-outs; on cancellation the error wraps ctx.Err(). cfg
// configures the economy for the sources that (re)generate one and is
// ignored by the world-backed sources, whose economy already exists.
func New(ctx context.Context, cfg Config, opts Options) (*Pipeline, error) {
	src := opts.resolveSource()
	cfg = applyWorkerBudget(cfg, opts)
	var (
		w   *econ.World
		err error
	)
	switch src.kind {
	case srcGenerate:
		w, err = econ.GenerateCtx(ctx, cfg)
	case srcGenerateToFile, srcChainFile:
		if src.kind == srcGenerateToFile {
			w, err = econ.GenerateToFileCtx(ctx, cfg, src.chainFile)
		} else {
			w, err = econ.GenerateCtx(ctx, cfg)
		}
	case srcWorld, srcWorldChainFile:
		w = src.world
	case srcNode:
		return nil, fmt.Errorf("fistful: a live node source never finishes; serve it with NewServer instead")
	}
	if err != nil {
		return nil, fmt.Errorf("fistful: generate: %w", err)
	}
	return pipelineFromWorld(ctx, w, src.chainFile, opts)
}

// NewPipeline generates an economy and runs every pipeline stage with one
// worker per CPU.
//
// Deprecated: use New.
func NewPipeline(cfg Config) (*Pipeline, error) {
	return New(context.Background(), cfg, Options{})
}

// NewPipelineOpts is NewPipeline with execution options.
//
// Deprecated: use New.
func NewPipelineOpts(cfg Config, opts Options) (*Pipeline, error) {
	return New(context.Background(), cfg, opts)
}

// NewPipelineFromChainFile runs the measurement pipeline over an existing
// framed chain file. Opening, framing, and decode failures (truncation,
// corrupt length prefixes, bad magic) surface as wrapped chain.Reader
// errors; a file holding a different chain than cfg generates is rejected by
// the world cross-check.
//
// Deprecated: use New with SourceChainFile.
func NewPipelineFromChainFile(cfg Config, path string, opts Options) (*Pipeline, error) {
	opts.Source = SourceChainFile(path)
	opts.ChainFile = ""
	return New(context.Background(), cfg, opts)
}

// NewPipelineFromWorld runs the pipeline stages over an existing world with
// one worker per CPU.
//
// Deprecated: use New with SourceWorld.
func NewPipelineFromWorld(w *econ.World) (*Pipeline, error) {
	return New(context.Background(), Config{}, Options{Source: SourceWorld(w)})
}

// NewPipelineFromWorldOpts runs the pipeline stages over an existing world.
//
// Deprecated: use New with SourceWorld (or SourceWorldChainFile).
func NewPipelineFromWorldOpts(w *econ.World, opts Options) (*Pipeline, error) {
	if opts.Source.kind == srcGenerate {
		opts.Source = SourceWorld(w)
	}
	return New(context.Background(), Config{}, opts)
}

// applyWorkerBudget folds the pipeline's worker budget into the generator
// knobs that default to it: the block-seal pipeline depth and the inline
// signing fan-out, unless the config pins its own counts. -parallel 1
// therefore forces a fully sequential generation (inline seal path), and
// -parallel N bounds the in-flight sealed blocks to N.
func applyWorkerBudget(cfg Config, opts Options) Config {
	if cfg.SignWorkers == 0 {
		cfg.SignWorkers = opts.Parallelism
	}
	if cfg.PipelineDepth == 0 {
		cfg.PipelineDepth = opts.Parallelism
	}
	return cfg
}

// pipelineFromWorld runs the measurement stages over a world: index the
// chain (resident or streamed from chainFile), then the analytics via
// pipelineFromGraph.
func pipelineFromWorld(ctx context.Context, w *econ.World, chainFile string, opts Options) (*Pipeline, error) {
	workers := par.Workers(opts.Parallelism)
	g, err := buildGraph(w, chainFile, workers)
	if err != nil {
		return nil, fmt.Errorf("fistful: index: %w", err)
	}
	return pipelineFromGraph(ctx, w, g, workers)
}

// pipelineFromGraph runs the analytic stages over an already-built graph.
// Stages with no data dependency on each other — the naive Heuristic 2, and
// the refined Heuristic 2 followed by naming — run concurrently; every
// result is identical to the sequential order. The graph may cover a prefix
// of the world's chain: naming skips tags not yet on chain, so the serve
// daemon's equivalence tests use this seam to build the batch reference for
// any height.
func pipelineFromGraph(ctx context.Context, w *econ.World, g *txgraph.Graph, workers int) (*Pipeline, error) {
	p := &Pipeline{World: w, Graph: g, Parallelism: workers}

	// Tag collection (Section 3): our own transactions plus public sources.
	p.Tags = buildTagStore(w)

	// Heuristic 1 and the dice bootstrap (the paper knew the Satoshi Dice
	// cluster from its tags before refining Heuristic 2). The co-spend
	// forest is built once; the Heuristic 2 branches below clone it instead
	// of re-scanning the chain per variant.
	base := cluster.Heuristic1Forest(g, workers)
	p.H1 = cluster.ClusteringFromForest(g, base)
	p.NamingH1 = tags.NameClusters(p.H1, g, p.Tags)
	p.Dice = p.diceSet()

	// The naive clustering exists only to exhibit the super-cluster; nothing
	// downstream of it feeds the refined branch, so the two run fanned out.
	// Each branch shards its classifier scan (FindChangeOutputsWorkers) over
	// half the worker budget, so the two concurrent branches together stay
	// inside Parallelism instead of multiplying it.
	waitWeek := 7 * w.BlocksPerDay
	h2Workers := par.Split(workers, 2)
	grp := par.NewGroupCtx(ctx, workers)
	grp.Go(func() error {
		p.Naive = cluster.Heuristic2OnForest(g, cluster.Unrefined(), base, h2Workers)
		return nil
	})
	grp.Go(func() error {
		p.Refined = cluster.Heuristic2OnForest(g, cluster.Refined(p.Dice, waitWeek), base, h2Workers)
		p.Naming = tags.NameClusters(p.Refined, g, p.Tags)
		return nil
	})
	grp.Go(func() error {
		p.Owners = w.OwnersForGraph(g)
		return nil
	})
	if err := grp.Wait(); err != nil {
		return nil, fmt.Errorf("fistful: pipeline stage: %w", err)
	}
	return p, nil
}

// buildGraph indexes the chain for the pipeline: from the world's resident
// chain, or — in streaming mode — by scanning the framed chain file in
// bounded block windows so the measurement side never needs the chain
// materialized. A streamed graph is cross-checked against the world (same
// height, same tip coinbase) so a stale or mismatched file fails loudly
// instead of silently desynchronizing the ground truth.
func buildGraph(w *econ.World, chainFile string, workers int) (*txgraph.Graph, error) {
	if chainFile == "" {
		return txgraph.BuildWorkers(w.Chain, workers)
	}
	src, err := chain.OpenReader(chainFile)
	if err != nil {
		return nil, err
	}
	defer src.Close()
	g, err := txgraph.BuildStream(src, workers)
	if err != nil {
		return nil, err
	}
	if g.Height() != w.Chain.Height() {
		return nil, fmt.Errorf("chain file %s has height %d, world has %d (wrong or stale file?)",
			chainFile, g.Height(), w.Chain.Height())
	}
	if _, ok := g.LookupTx(w.Chain.Tip().Txs[0].TxID()); !ok {
		return nil, fmt.Errorf("chain file %s does not contain the world's tip block (wrong or stale file?)", chainFile)
	}
	return g, nil
}

// diceSet expands the tagged dice services' H1 clusters into an address set.
func (p *Pipeline) diceSet() map[txgraph.AddrID]bool {
	return tags.ServiceAddrSet(p.H1, p.NamingH1, p.Graph, p.World.DiceServiceNames())
}

// WaitDay returns the simulated block count of one day.
func (p *Pipeline) WaitDay() int64 { return p.World.BlocksPerDay }

// WaitWeek returns the simulated block count of one week.
func (p *Pipeline) WaitWeek() int64 { return 7 * p.World.BlocksPerDay }
