// Package fistful reproduces "A Fistful of Bitcoins: Characterizing
// Payments Among Men with No Names" (Meiklejohn et al., IMC 2013) on a
// synthetic Bitcoin economy.
//
// The package is the public facade over the substrates in internal/: one
// call builds the full measurement pipeline — generate an economy, index
// the chain, run Heuristic 1 and the refined Heuristic 2, bootstrap the
// Satoshi-Dice exemption from tags, and name clusters — and per-experiment
// functions regenerate every table and figure in the paper's evaluation.
//
//	p, err := fistful.NewPipeline(fistful.DefaultConfig())
//	fmt.Print(p.Table2().Render())
package fistful

import (
	"fmt"

	"repro/internal/chain"
	"repro/internal/cluster"
	"repro/internal/econ"
	"repro/internal/par"
	"repro/internal/tags"
	"repro/internal/txgraph"
)

// Config re-exports the economy configuration.
type Config = econ.Config

// DefaultConfig returns the full-experiment configuration.
func DefaultConfig() Config { return econ.DefaultConfig() }

// SmallConfig returns a fast, reduced configuration for tests and demos.
func SmallConfig() Config { return econ.Small() }

// Options tunes how the pipeline executes. The zero value uses one worker
// per CPU everywhere.
type Options struct {
	// Parallelism is the total worker budget for the pipeline: the economy
	// generator's block-seal signing fan-out (unless the config pins its
	// own SignWorkers), the graph build pre-pass and the sharded
	// Heuristic 1 use it directly, and stages that fan out (the H2
	// branches, the evasion study's levels) divide it among their
	// concurrent branches rather than multiplying it. <= 0 means one
	// worker per CPU; 1 forces fully sequential execution. Results are
	// byte-identical for every setting.
	Parallelism int

	// ChainFile, when non-empty, puts the pipeline in streaming mode: the
	// transaction graph is built by scanning the framed chain file at this
	// path (chain.Reader) in bounded block windows instead of indexing the
	// world's resident chain. NewPipelineOpts additionally writes the file
	// while the economy is generated (econ.GenerateToFile), so the chain
	// under measurement round-trips through disk end to end;
	// NewPipelineFromWorldOpts expects the file to exist already and to
	// hold the same chain as the world. Every output is byte-identical to
	// the in-memory path.
	ChainFile string
}

// Pipeline holds every stage of the measurement pipeline, built once and
// shared by the experiments.
type Pipeline struct {
	World *econ.World
	Graph *txgraph.Graph

	// Parallelism is the resolved worker count the pipeline was built with;
	// the experiments reuse it for their own fan-out.
	Parallelism int

	// Tags combines the researcher's own-transaction tags with the public
	// (tag-site and forum) tags, as the study did.
	Tags *tags.Store

	// H1 is the multi-input clustering (Heuristic 1 only).
	H1 *cluster.Clustering
	// NamingH1 names the H1 clusters; it bootstraps the dice set.
	NamingH1 *tags.Naming

	// Dice is the Satoshi-Dice address set: every address in an H1 cluster
	// named as a dice-style gambling service.
	Dice map[txgraph.AddrID]bool

	// Naive is Heuristic 2 without refinements (Section 4.1's first
	// attempt); it exhibits the super-cluster.
	Naive *cluster.Clustering
	// Refined is the final clustering used for all Section 5 analysis.
	Refined *cluster.Clustering
	// Naming names the refined clusters.
	Naming *tags.Naming

	// Owners is the ground-truth owner of every address (dense by AddrID),
	// -1 where unknown.
	Owners []int32
}

// NewPipeline generates an economy and runs every pipeline stage with one
// worker per CPU.
func NewPipeline(cfg Config) (*Pipeline, error) {
	return NewPipelineOpts(cfg, Options{})
}

// NewPipelineOpts is NewPipeline with execution options.
func NewPipelineOpts(cfg Config, opts Options) (*Pipeline, error) {
	cfg = applyWorkerBudget(cfg, opts)
	var (
		w   *econ.World
		err error
	)
	if opts.ChainFile != "" {
		w, err = econ.GenerateToFile(cfg, opts.ChainFile)
	} else {
		w, err = econ.Generate(cfg)
	}
	if err != nil {
		return nil, fmt.Errorf("fistful: generate: %w", err)
	}
	return NewPipelineFromWorldOpts(w, opts)
}

// NewPipelineFromChainFile runs the measurement pipeline over an existing
// framed chain file (a previous `fistful generate -out` run): the world —
// the ground truth the experiments compare against — is regenerated from
// cfg, which must be the configuration the file was generated with, and the
// transaction graph is built by streaming the file. Opening, framing, and
// decode failures (truncation, corrupt length prefixes, bad magic) surface
// as wrapped chain.Reader errors; a file holding a different chain than cfg
// generates is rejected by the world cross-check.
func NewPipelineFromChainFile(cfg Config, path string, opts Options) (*Pipeline, error) {
	cfg = applyWorkerBudget(cfg, opts)
	w, err := econ.Generate(cfg)
	if err != nil {
		return nil, fmt.Errorf("fistful: generate: %w", err)
	}
	opts.ChainFile = path
	return NewPipelineFromWorldOpts(w, opts)
}

// applyWorkerBudget folds the pipeline's worker budget into the generator
// knobs that default to it: the block-seal pipeline depth and the inline
// signing fan-out, unless the config pins its own counts. -parallel 1
// therefore forces a fully sequential generation (inline seal path), and
// -parallel N bounds the in-flight sealed blocks to N.
func applyWorkerBudget(cfg Config, opts Options) Config {
	if cfg.SignWorkers == 0 {
		cfg.SignWorkers = opts.Parallelism
	}
	if cfg.PipelineDepth == 0 {
		cfg.PipelineDepth = opts.Parallelism
	}
	return cfg
}

// NewPipelineFromWorld runs the pipeline stages over an existing world with
// one worker per CPU.
func NewPipelineFromWorld(w *econ.World) (*Pipeline, error) {
	return NewPipelineFromWorldOpts(w, Options{})
}

// NewPipelineFromWorldOpts runs the pipeline stages over an existing world.
// Stages with no data dependency on each other — the naive Heuristic 2, and
// the refined Heuristic 2 followed by naming — run concurrently; every
// result is identical to the sequential order.
func NewPipelineFromWorldOpts(w *econ.World, opts Options) (*Pipeline, error) {
	workers := par.Workers(opts.Parallelism)
	g, err := buildGraph(w, opts.ChainFile, workers)
	if err != nil {
		return nil, fmt.Errorf("fistful: index: %w", err)
	}
	p := &Pipeline{World: w, Graph: g, Parallelism: workers}

	// Tag collection (Section 3): our own transactions plus public sources.
	p.Tags = tags.NewStore()
	for _, t := range w.Tags.All() {
		p.Tags.Add(t)
	}
	p.Tags.AddAll(w.PublicTags)

	// Heuristic 1 and the dice bootstrap (the paper knew the Satoshi Dice
	// cluster from its tags before refining Heuristic 2). The co-spend
	// forest is built once; the Heuristic 2 branches below clone it instead
	// of re-scanning the chain per variant.
	base := cluster.Heuristic1Forest(g, workers)
	p.H1 = cluster.ClusteringFromForest(g, base)
	p.NamingH1 = tags.NameClusters(p.H1, g, p.Tags)
	p.Dice = p.diceSet()

	// The naive clustering exists only to exhibit the super-cluster; nothing
	// downstream of it feeds the refined branch, so the two run fanned out.
	// Each branch shards its classifier scan (FindChangeOutputsWorkers) over
	// half the worker budget, so the two concurrent branches together stay
	// inside Parallelism instead of multiplying it.
	waitWeek := 7 * w.BlocksPerDay
	h2Workers := workers / 2
	if h2Workers < 1 {
		h2Workers = 1
	}
	grp := par.NewGroup(workers)
	grp.Go(func() error {
		p.Naive = cluster.Heuristic2OnForestWorkers(g, cluster.Unrefined(), base, h2Workers)
		return nil
	})
	grp.Go(func() error {
		p.Refined = cluster.Heuristic2OnForestWorkers(g, cluster.Refined(p.Dice, waitWeek), base, h2Workers)
		p.Naming = tags.NameClusters(p.Refined, g, p.Tags)
		return nil
	})
	grp.Go(func() error {
		p.Owners = w.OwnersForGraph(g)
		return nil
	})
	if err := grp.Wait(); err != nil {
		return nil, fmt.Errorf("fistful: pipeline stage: %w", err)
	}
	return p, nil
}

// buildGraph indexes the chain for the pipeline: from the world's resident
// chain, or — in streaming mode — by scanning the framed chain file in
// bounded block windows so the measurement side never needs the chain
// materialized. A streamed graph is cross-checked against the world (same
// height, same tip coinbase) so a stale or mismatched file fails loudly
// instead of silently desynchronizing the ground truth.
func buildGraph(w *econ.World, chainFile string, workers int) (*txgraph.Graph, error) {
	if chainFile == "" {
		return txgraph.BuildWorkers(w.Chain, workers)
	}
	src, err := chain.OpenReader(chainFile)
	if err != nil {
		return nil, err
	}
	defer src.Close()
	g, err := txgraph.BuildStream(src, workers)
	if err != nil {
		return nil, err
	}
	if g.Height() != w.Chain.Height() {
		return nil, fmt.Errorf("chain file %s has height %d, world has %d (wrong or stale file?)",
			chainFile, g.Height(), w.Chain.Height())
	}
	if _, ok := g.LookupTx(w.Chain.Tip().Txs[0].TxID()); !ok {
		return nil, fmt.Errorf("chain file %s does not contain the world's tip block (wrong or stale file?)", chainFile)
	}
	return g, nil
}

// diceSet expands the tagged dice services' H1 clusters into an address set.
func (p *Pipeline) diceSet() map[txgraph.AddrID]bool {
	diceNames := make(map[string]bool)
	for _, n := range p.World.DiceServiceNames() {
		diceNames[n] = true
	}
	diceClusters := make(map[int32]bool)
	for label, svc := range p.NamingH1.ClusterService {
		if diceNames[svc] {
			diceClusters[label] = true
		}
	}
	out := make(map[txgraph.AddrID]bool)
	for id := 0; id < p.Graph.NumAddrs(); id++ {
		if diceClusters[p.H1.ClusterOf(txgraph.AddrID(id))] {
			out[txgraph.AddrID(id)] = true
		}
	}
	return out
}

// WaitDay returns the simulated block count of one day.
func (p *Pipeline) WaitDay() int64 { return p.World.BlocksPerDay }

// WaitWeek returns the simulated block count of one week.
func (p *Pipeline) WaitWeek() int64 { return 7 * p.World.BlocksPerDay }
