package fistful

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/tags"
)

// The pipeline is expensive, so integration tests share one instance built
// from the Small configuration.
var (
	pipeOnce sync.Once
	pipe     *Pipeline
	pipeErr  error
)

func smallPipeline(t *testing.T) *Pipeline {
	t.Helper()
	pipeOnce.Do(func() {
		pipe, pipeErr = NewPipeline(SmallConfig())
	})
	if pipeErr != nil {
		t.Fatalf("pipeline: %v", pipeErr)
	}
	return pipe
}

func TestPipelineStagesPopulated(t *testing.T) {
	p := smallPipeline(t)
	if p.Graph.NumTxs() == 0 || p.Graph.NumAddrs() == 0 {
		t.Fatal("empty graph")
	}
	if p.Tags.Len() == 0 {
		t.Fatal("no tags collected")
	}
	if len(p.Dice) == 0 {
		t.Fatal("dice set empty: tag bootstrap failed")
	}
	if p.Refined == nil || p.Naive == nil {
		t.Fatal("clusterings missing")
	}
	if p.Naming.NamedClusters == 0 {
		t.Fatal("no clusters named")
	}
}

func TestH1PerfectPrecision(t *testing.T) {
	p := smallPipeline(t)
	_, r := p.Heuristic1()
	if r.Truth.Purity != 1.0 || r.Truth.Contaminated != 0 {
		t.Fatalf("H1 purity=%.4f contaminated=%d; the protocol property must hold",
			r.Truth.Purity, r.Truth.Contaminated)
	}
}

func TestH2LadderShape(t *testing.T) {
	p := smallPipeline(t)
	_, r, err := p.Heuristic2()
	if err != nil {
		t.Fatal(err)
	}
	naive := r.Ladder[0].Stats
	dice := r.Ladder[1].Stats
	day := r.Ladder[2].Stats
	week := r.Ladder[3].Stats
	if naive.FPRate() <= dice.FPRate() {
		t.Fatalf("dice exemption did not reduce FP: %.4f -> %.4f", naive.FPRate(), dice.FPRate())
	}
	if dice.FalsePositives < day.FalsePositives {
		t.Fatalf("waiting a day increased FPs: %d -> %d", dice.FalsePositives, day.FalsePositives)
	}
	if day.FalsePositives < week.FalsePositives {
		t.Fatalf("waiting a week increased FPs: %d -> %d", day.FalsePositives, week.FalsePositives)
	}
	// The headline shape: dice exemption removes the bulk of the estimate.
	if naive.FPRate() < 2*dice.FPRate() {
		t.Fatalf("dice exemption too weak: %.4f -> %.4f", naive.FPRate(), dice.FPRate())
	}
}

func TestRefinementKillsContamination(t *testing.T) {
	p := smallPipeline(t)
	_, r, err := p.Heuristic2()
	if err != nil {
		t.Fatal(err)
	}
	if r.RefinedTruth.Purity < r.NaiveTruth.Purity {
		t.Fatalf("refinement reduced purity: %.4f -> %.4f", r.NaiveTruth.Purity, r.RefinedTruth.Purity)
	}
	if r.RefinedTruth.Contaminated > r.NaiveTruth.Contaminated {
		t.Fatalf("refinement increased contamination: %d -> %d",
			r.NaiveTruth.Contaminated, r.RefinedTruth.Contaminated)
	}
	if len(r.RefinedBigFour) > 0 {
		t.Fatalf("refined clustering still merges %v", r.RefinedBigFour)
	}
}

func TestAmplification(t *testing.T) {
	p := smallPipeline(t)
	if p.Naming.Amplification < 1.5 {
		t.Fatalf("amplification = %.1fx; clustering should name far more than the tagged set",
			p.Naming.Amplification)
	}
	if p.Naming.NamedAddresses <= p.Naming.TaggedAddresses {
		t.Fatal("naming did not extend beyond the tagged addresses")
	}
}

func TestFigure2Sane(t *testing.T) {
	p := smallPipeline(t)
	_, s := p.Figure2(6)
	if len(s.Heights) != 6 {
		t.Fatalf("samples = %d", len(s.Heights))
	}
	for si := range s.Heights {
		sum := 0.0
		for ci := range s.Categories {
			v := s.SharePct[ci][si]
			if v < 0 || v > 100 {
				t.Fatalf("share out of range: %f", v)
			}
			sum += v
		}
		if sum > 100.000001 {
			t.Fatalf("shares sum to %f", sum)
		}
	}
	// Exchanges must be a visible slice of the economy by the end.
	exIdx := -1
	for i, c := range s.Categories {
		if c == tags.CatBankExchange {
			exIdx = i
		}
	}
	if s.SharePct[exIdx][len(s.Heights)-1] <= 0 {
		t.Fatal("exchange balance share is zero at the end")
	}
}

func TestTable2ChainsFollowed(t *testing.T) {
	p := smallPipeline(t)
	tbl, r := p.Table2()
	if r.HopsPerChain[0] == 0 && r.HopsPerChain[1] == 0 && r.HopsPerChain[2] == 0 {
		t.Fatalf("no chain could be followed:\n%s", tbl.Render())
	}
	if r.ExchangePeels == 0 {
		t.Fatal("no peels to exchanges recovered")
	}
	if r.RecoveredPeels == 0 {
		t.Fatal("no scripted peels recovered")
	}
}

func TestTable2PeelNoteUsesPeelDenominator(t *testing.T) {
	p := smallPipeline(t)
	tbl, r := p.Table2()
	if r.TotalPeels == 0 {
		t.Fatal("no peels recovered")
	}
	// The paper frames the result as 54 of 300 *peels*; a hop can emit
	// several peels, so the hop count is the wrong denominator.
	want := fmt.Sprintf("peels to exchanges: %d of %d peels (paper: 54 of 300)",
		r.ExchangePeels, r.TotalPeels)
	for _, n := range tbl.Notes {
		if n == want {
			return
		}
		if strings.HasPrefix(n, "peels to exchanges:") {
			t.Fatalf("note %q, want %q", n, want)
		}
	}
	t.Fatal("peels-to-exchanges note missing")
}

func TestTable3TheftsTracked(t *testing.T) {
	p := smallPipeline(t)
	_, rows := p.Table3()
	if len(rows) != 7 {
		t.Fatalf("theft rows = %d, want 7", len(rows))
	}
	reached := 0
	for _, row := range rows {
		if row.Name == "Trojan" {
			if row.UnmovedBTC <= 0 {
				t.Error("trojan unmoved balance missing")
			}
			continue
		}
		if row.Exchanges {
			reached++
		}
		if row.Movement == "" {
			t.Errorf("theft %s: no movement observed", row.Name)
		}
	}
	if reached < 4 {
		t.Fatalf("only %d thefts reached exchanges; the paper's claim needs most of them", reached)
	}
}

func TestTable1Totals(t *testing.T) {
	p := smallPipeline(t)
	tbl := p.Table1()
	out := tbl.Render()
	if !strings.Contains(out, "TOTAL") {
		t.Fatal("no totals row")
	}
	if p.World.ResearcherTxCount < 330 {
		t.Fatalf("campaign incomplete: %d txs", p.World.ResearcherTxCount)
	}
}

func TestRenderAllTables(t *testing.T) {
	p := smallPipeline(t)
	t1, _ := p.Heuristic1()
	t2, _, err := p.Heuristic2()
	if err != nil {
		t.Fatal(err)
	}
	f2, _ := p.Figure2(8)
	tt2, _ := p.Table2()
	tt3, _ := p.Table3()
	for _, tbl := range []interface{ Render() string }{p.Table1(), t1, t2, f2, tt2, tt3} {
		if len(tbl.Render()) == 0 {
			t.Fatal("empty table render")
		}
	}
}

func TestEvasionStudyMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("three full generations")
	}
	cfg := SmallConfig()
	cfg.Blocks = 500
	cfg.Users = 80
	_, rows, err := EvasionStudy(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Stricter discipline must starve the heuristics.
	if rows[2].H2Labeled >= rows[0].H2Labeled {
		t.Fatalf("paranoid users still yield %d labels vs %d at 2013 idioms",
			rows[2].H2Labeled, rows[0].H2Labeled)
	}
	if rows[2].NaiveContaminated > rows[0].NaiveContaminated {
		t.Fatalf("paranoid users increased naive false merges: %d vs %d",
			rows[2].NaiveContaminated, rows[0].NaiveContaminated)
	}
}

func TestEvasionStudyEmptyLevels(t *testing.T) {
	// A non-nil empty level set must produce an empty report, not divide the
	// worker budget by zero.
	tbl, rows, err := EvasionStudyOpts(SmallConfig(), []EvasionLevel{}, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 || len(tbl.Rows) != 0 {
		t.Fatalf("empty levels produced %d rows", len(rows))
	}
}

func TestTopEntitiesDominatedByServices(t *testing.T) {
	p := smallPipeline(t)
	tbl := p.TopEntities(10)
	if len(tbl.Rows) == 0 {
		t.Fatal("no named entities")
	}
	// The biggest footprints must be services, not individuals.
	services := 0
	for _, row := range tbl.Rows {
		if row[1] != tags.CatIndividual.String() {
			services++
		}
	}
	if services < len(tbl.Rows)/2 {
		t.Fatalf("only %d of %d top entities are services", services, len(tbl.Rows))
	}
}
