package fistful

import (
	"fmt"
	"sort"

	"repro/internal/chain"
	"repro/internal/cluster"
	"repro/internal/econ"
	"repro/internal/flow"
	"repro/internal/par"
	"repro/internal/report"
	"repro/internal/tags"
	"repro/internal/txgraph"

	"repro/internal/balance"
)

// Table1 reproduces the data-collection experiment of Section 3.1 / Table 1:
// the service roster by category with the transactions performed and the
// addresses tagged from them (paper totals: 344 transactions, 1,070
// addresses hand-tagged).
func (p *Pipeline) Table1() *report.Table {
	t := &report.Table{
		Title:   "Table 1 — services transacted with, by category",
		Headers: []string{"category", "services", "planned txs", "performed txs", "addresses tagged"},
	}
	planned := make(map[tags.Category]int)
	services := make(map[tags.Category]int)
	for _, def := range econ.Roster() {
		services[def.Category]++
		planned[def.Category] += def.ResearcherTxs
	}
	taggedByCat := make(map[tags.Category]int)
	totalTagged := 0
	for _, tg := range p.World.Tags.All() {
		if tg.Source == tags.SourceOwnTransaction {
			taggedByCat[tg.Category]++
			totalTagged++
		}
	}
	var svcTotal, planTotal, doneTotal int
	for _, cat := range tags.Categories {
		if services[cat] == 0 {
			continue
		}
		t.AddRow(cat.String(), services[cat], planned[cat],
			p.World.ResearcherByCat[cat], taggedByCat[cat])
		svcTotal += services[cat]
		planTotal += planned[cat]
		doneTotal += p.World.ResearcherByCat[cat]
	}
	t.AddRow("TOTAL", svcTotal, planTotal, doneTotal, totalTagged)
	t.Notes = append(t.Notes,
		"paper: 344 transactions with the roster, 1,070 addresses hand-tagged",
		fmt.Sprintf("measured: %d transactions, %d addresses tagged from them",
			p.World.ResearcherTxCount, totalTagged))
	return t
}

// H1Result carries the Section 4.1 Heuristic 1 statistics.
type H1Result struct {
	Stats          cluster.Stats
	GoxClusters    int
	Truth          cluster.GroundTruthMetrics
	AddrsPerMaxUsr float64
}

// Heuristic1 reproduces the Section 4.1 statistics: cluster counts, the
// sink-inclusive upper bound on users (paper: 5.5M clusters, at most
// 6,595,564 users), the many-clusters-per-service effect (paper: 20 Mt. Gox
// clusters), and — beyond the paper — ground-truth precision.
func (p *Pipeline) Heuristic1() (*report.Table, H1Result) {
	var r H1Result
	r.Stats = p.H1.ComputeStats()
	r.GoxClusters = p.NamingH1.ClustersNamed()["Mt Gox"]
	r.Truth = p.H1.EvaluateAgainstOwners(p.Owners)
	if r.Stats.MaxUsers > 0 {
		r.AddrsPerMaxUsr = float64(r.Stats.Addresses) / float64(r.Stats.MaxUsers)
	}

	t := &report.Table{
		Title:   "Heuristic 1 — multi-input clustering (Section 4.1)",
		Headers: []string{"metric", "measured", "paper"},
	}
	t.AddRow("addresses", r.Stats.Addresses, "12M (2013 chain)")
	t.AddRow("clusters of spenders", r.Stats.SpenderClusters, "5.5M")
	t.AddRow("sink addresses", r.Stats.SinkAddresses, "-")
	t.AddRow("max distinct users", r.Stats.MaxUsers, "6,595,564")
	t.AddRow("largest cluster (addrs)", r.Stats.LargestCluster, "-")
	t.AddRow("Mt. Gox clusters", r.GoxClusters, "20")
	t.AddRow("ground-truth purity", fmt.Sprintf("%.4f", r.Truth.Purity), "n/a (no ground truth)")
	t.AddRow("contaminated clusters", r.Truth.Contaminated, "0 expected (protocol property)")
	return t, r
}

// H2Variant is one rung of the refinement ladder.
type H2Variant struct {
	Name    string
	Stats   cluster.ChangeStats
	PaperFP string
}

// H2Result carries the Section 4.2 measurements.
type H2Result struct {
	Ladder []H2Variant
	// Super-cluster forensics.
	NaiveBigFour   []string // of Mt Gox/Instawallet/Bitpay/Silk Road sharing one naive cluster
	RefinedBigFour []string
	NaiveTruth     cluster.GroundTruthMetrics
	RefinedTruth   cluster.GroundTruthMetrics
	// Naming amplification (paper: 2,197 named clusters covering >1.8M
	// addresses, 1,600x the hand-tagged set).
	NamedClusters int
	Amplification float64
	RefinedUsers  int // paper: 3,384,179 clusters -> 3,383,904 after collapse
}

// Heuristic2 reproduces the Section 4.2 evaluation: the false-positive
// ladder (13% -> 1% -> 0.28% -> 0.17%), the super-cluster that the
// unrefined heuristic builds and the refinements dissolve, and the tag
// amplification the final clustering provides. A non-nil error means a
// ladder stage failed and the table must not be trusted.
func (p *Pipeline) Heuristic2() (*report.Table, H2Result, error) {
	var r H2Result
	variants := []struct {
		name    string
		cfg     cluster.ChangeConfig
		paperFP string
	}{
		{"conditions 1-4 only", cluster.Unrefined(), "13%"},
		{"+ dice exemption", cluster.WithDice(p.Dice), "1%"},
		{"+ wait a day", cluster.ChangeConfig{Dice: p.Dice, ExemptDice: true, WaitBlocks: p.WaitDay()}, "0.28%"},
		{"+ wait a week", cluster.ChangeConfig{Dice: p.Dice, ExemptDice: true, WaitBlocks: p.WaitWeek()}, "0.17%"},
		{"refined (guards)", cluster.Refined(p.Dice, p.WaitWeek()), "-"},
	}
	t := &report.Table{
		Title:   "Heuristic 2 — change-address refinement ladder (Section 4.2)",
		Headers: []string{"variant", "labeled", "est. FPs", "FP rate", "paper FP"},
	}
	// Each ladder rung is an independent read-only classifier run over the
	// shared graph, so the rungs fan out across the pipeline's worker budget
	// and report in ladder order. Each rung's scan additionally shards over
	// its share of the budget, so a few idle cores still help when there are
	// fewer rungs than workers — the budget is divided, never multiplied.
	rungWorkers := par.Split(p.Parallelism, len(variants))
	ladder := make([]cluster.ChangeStats, len(variants))
	grp := par.NewGroup(p.Parallelism)
	for i := range variants {
		i := i
		grp.Go(func() error {
			_, ladder[i] = cluster.FindChangeOutputsWorkers(p.Graph, variants[i].cfg, rungWorkers)
			return nil
		})
	}
	if err := grp.Wait(); err != nil {
		return nil, H2Result{}, fmt.Errorf("fistful: heuristic 2 ladder: %w", err)
	}
	for i, v := range variants {
		st := ladder[i]
		r.Ladder = append(r.Ladder, H2Variant{Name: v.name, Stats: st, PaperFP: v.paperFP})
		t.AddRow(v.name, st.Labeled, st.FalsePositives, report.Pct(st.FPRate()), v.paperFP)
	}

	r.NaiveTruth = p.Naive.EvaluateAgainstOwners(p.Owners)
	r.RefinedTruth = p.Refined.EvaluateAgainstOwners(p.Owners)
	r.NaiveBigFour = p.bigFourTogether(p.Naive)
	r.RefinedBigFour = p.bigFourTogether(p.Refined)
	r.NamedClusters = p.Naming.NamedClusters
	r.Amplification = p.Naming.Amplification
	r.RefinedUsers = p.Naming.CollapsedUsers

	t.Notes = append(t.Notes,
		fmt.Sprintf("naive super-cluster: %v share one cluster (paper: Mt. Gox, Instawallet, BitPay, Silk Road in a 1.6M-address cluster)", r.NaiveBigFour),
		fmt.Sprintf("refined: %v share one cluster (paper: super-cluster eliminated)", orNone(r.RefinedBigFour)),
		fmt.Sprintf("ground truth: naive purity %.4f (%d contaminated) vs refined %.4f (%d contaminated)",
			r.NaiveTruth.Purity, r.NaiveTruth.Contaminated, r.RefinedTruth.Purity, r.RefinedTruth.Contaminated),
		fmt.Sprintf("named clusters: %d, covering %d addresses = %.0fx the %d hand-tagged (paper: 2,197 clusters, 1,600x)",
			r.NamedClusters, p.Naming.NamedAddresses, r.Amplification, p.Naming.TaggedAddresses),
		fmt.Sprintf("distinct users after tag collapse: %d (paper: 3,384,179 -> 3,383,904)", r.RefinedUsers))
	return t, r, nil
}

func orNone(s []string) any {
	if len(s) == 0 {
		return "none"
	}
	return s
}

// bigFourTogether reports which of the paper's four super-cluster services
// share a single cluster under the given clustering.
func (p *Pipeline) bigFourTogether(c *cluster.Clustering) []string {
	names := []string{"Mt Gox", "Instawallet", "Bitpay", "Silk Road"}
	byCluster := make(map[int32]map[string]bool)
	for id, o := range p.Owners {
		if o < 0 {
			continue
		}
		actor := p.World.Actors[o]
		match := ""
		for _, n := range names {
			if actor.Name == n {
				match = n
			}
		}
		if match == "" {
			continue
		}
		l := c.ClusterOf(txgraph.AddrID(id))
		if byCluster[l] == nil {
			byCluster[l] = make(map[string]bool)
		}
		byCluster[l][match] = true
	}
	var best []string
	for _, m := range byCluster {
		if len(m) > len(best) {
			best = best[:0]
			for n := range m {
				best = append(best, n)
			}
		}
	}
	sort.Strings(best)
	if len(best) < 2 {
		return nil
	}
	return best
}

// Figure2 reproduces the per-category balance time series: each major
// category's balance as a percentage of active bitcoins, sampled across the
// simulated timeline.
func (p *Pipeline) Figure2(samples int) (*report.Table, *balance.Series) {
	if samples <= 0 {
		samples = 12
	}
	s := balance.Compute(p.Graph, p.Refined, p.Naming, p.World.Chain.Params(), samples)
	t := &report.Table{
		Title:   "Figure 2 — category balances as % of active bitcoins",
		Headers: []string{"category"},
	}
	for _, tm := range s.Times {
		t.Headers = append(t.Headers, tm.Format("2006-01"))
	}
	for ci, cat := range s.Categories {
		row := []any{cat.String()}
		for si := range s.Heights {
			row = append(row, fmt.Sprintf("%.1f", s.SharePct[ci][si]))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper: exchanges dominate and grow over time; gambling appears mid-2012; investment bubbles then collapses")
	return t, s
}

// Table2Row is one service row of the dissolution-tracking table.
type Table2Row struct {
	Service string
	Chains  [3]struct {
		Peels int
		BTC   float64
	}
}

// Table2Result carries the full Table 2 measurement.
type Table2Result struct {
	Rows           []Table2Row
	TotalPeels     int
	ExchangePeels  int
	HopsPerChain   [3]int
	PlannedPeels   int
	RecoveredPeels int
}

// Table2 reproduces the Silk Road dissolution tracking: the three peeling
// chains followed 100 hops each via Heuristic 2 change links, reporting
// peels to known services (paper: 54 of 300 peels reach exchanges).
func (p *Pipeline) Table2() (*report.Table, Table2Result) {
	var r Table2Result
	t := &report.Table{
		Title:   "Table 2 — tracking the hot-wallet dissolution (3 peeling chains)",
		Headers: []string{"service", "category", "c1 peels", "c1 BTC", "c2 peels", "c2 BTC", "c3 peels", "c3 BTC"},
	}
	d := p.World.Dissolution
	if d == nil {
		t.Notes = append(t.Notes, "scenarios disabled: no dissolution to track")
		return t, r
	}
	labels := p.Refined.ChangeLabels
	linker := flow.NewLabelLinker(labels)
	namer := flow.NamingAdapter{Clusters: p.Refined, Naming: p.Naming}

	type cell struct {
		peels int
		btc   float64
	}
	perSvc := make(map[string]*[3]cell)
	catOf := make(map[string]tags.Category)
	order := []string{}
	for ci := 0; ci < 3; ci++ {
		res := flow.FollowPeelingChain(p.Graph, d.ChainStarts[ci], p.World.Config.PeelHops, linker, namer)
		r.HopsPerChain[ci] = res.Hops
		for _, peel := range res.Peels {
			r.TotalPeels++
			if peel.Service == "" {
				continue
			}
			r.RecoveredPeels++
			if peel.Cat == tags.CatBankExchange || peel.Cat == tags.CatFixedExchange {
				r.ExchangePeels++
			}
			c := perSvc[peel.Service]
			if c == nil {
				c = new([3]cell)
				perSvc[peel.Service] = c
				catOf[peel.Service] = peel.Cat
				order = append(order, peel.Service)
			}
			c[ci].peels++
			c[ci].btc += peel.Amount.ToBTC()
		}
	}
	sort.Slice(order, func(i, j int) bool {
		ci, cj := catOf[order[i]], catOf[order[j]]
		if ci != cj {
			return ci < cj
		}
		return order[i] < order[j]
	})
	for _, svc := range order {
		c := perSvc[svc]
		row := Table2Row{Service: svc}
		cells := []any{svc, catOf[svc].String()}
		for ci := 0; ci < 3; ci++ {
			row.Chains[ci].Peels = c[ci].peels
			row.Chains[ci].BTC = c[ci].btc
			if c[ci].peels == 0 {
				cells = append(cells, "", "")
			} else {
				cells = append(cells, c[ci].peels, report.BTC(c[ci].btc))
			}
		}
		r.Rows = append(r.Rows, row)
		t.AddRow(cells...)
	}
	r.PlannedPeels = len(d.Planned)
	t.Notes = append(t.Notes,
		fmt.Sprintf("hops followed: %d/%d/%d (paper: 100 per chain)", r.HopsPerChain[0], r.HopsPerChain[1], r.HopsPerChain[2]),
		fmt.Sprintf("peels to exchanges: %d of %d peels (paper: 54 of 300)", r.ExchangePeels, r.TotalPeels),
		fmt.Sprintf("scripted known-service peels: %d; recovered by the tracker: %d", r.PlannedPeels, r.RecoveredPeels),
		fmt.Sprintf("hot wallet held %.1f%% of minted coins (paper: 5%%); case amounts scaled by %.5f", 100*d.SupplyShare, p.World.CaseScale))
	return t, r
}

// Table3Row is one theft row.
type Table3Row struct {
	Name          string
	StolenBTC     float64
	PaperBTC      float64
	Movement      string
	PaperMovement string
	Exchanges     bool
	ExchangeBTC   float64
	UnmovedBTC    float64
}

// Table3 reproduces the theft-tracking table: for each theft, the scaled
// amount stolen, the observed movement pattern, and whether tainted coins
// reached known exchanges.
func (p *Pipeline) Table3() (*report.Table, []Table3Row) {
	t := &report.Table{
		Title:   "Table 3 — tracking thefts",
		Headers: []string{"theft", "BTC (scaled)", "paper BTC", "movement", "paper", "exchanges?", "BTC to exchanges", "unmoved"},
	}
	var rows []Table3Row
	namer := flow.NamingAdapter{Clusters: p.Refined, Naming: p.Naming}
	for _, theft := range p.World.Thefts {
		rep := flow.TrackTheft(p.Graph, theft.TheftOutputs, namer, 400)
		row := Table3Row{
			Name:          theft.Name,
			StolenBTC:     theft.Amount.ToBTC(),
			PaperBTC:      theft.PaperBTC,
			Movement:      rep.Movement,
			PaperMovement: theft.Movement,
			Exchanges:     len(rep.ReachedExchanges) > 0,
			ExchangeBTC:   rep.ExchangeTotal.ToBTC(),
			UnmovedBTC:    rep.Unmoved.ToBTC(),
		}
		rows = append(rows, row)
		yn := "No"
		if row.Exchanges {
			yn = "Yes"
		}
		t.AddRow(theft.Name, report.BTC(row.StolenBTC), report.BTC(theft.PaperBTC),
			row.Movement, theft.Movement, yn, report.BTC(row.ExchangeBTC), report.BTC(row.UnmovedBTC))
	}
	t.Notes = append(t.Notes,
		"paper: every theft but the trojan reached a known exchange; the trojan thief left 2,857 of 3,257 BTC unmoved",
		fmt.Sprintf("case amounts scaled by %.5f (simulated supply / 11M BTC)", p.World.CaseScale))
	return t, rows
}

// SelfChangeShare measures the fraction of (non-coinbase) transactions using
// self-change, the idiom the paper measures at 23% for the first half of
// 2013.
func (p *Pipeline) SelfChangeShare() float64 {
	self, total := 0, 0
	for seq := 0; seq < p.Graph.NumTxs(); seq++ {
		tx := p.Graph.Tx(txgraph.TxSeq(seq))
		if tx.Coinbase {
			continue
		}
		total++
		if tx.HasSelfChange() {
			self++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(self) / float64(total)
}

// Amount re-exports chain.Amount for callers of the facade.
type Amount = chain.Amount

// TopEntities reports the largest named clusters by address count and final
// balance — the concentration that makes exchanges "chokepoints in the
// Bitcoin economy" (Section 5's premise: cashing out at scale is impossible
// without touching a handful of institutions).
func (p *Pipeline) TopEntities(k int) *report.Table {
	if k <= 0 {
		k = 10
	}
	bal := p.Graph.Balances()
	type entity struct {
		name  string
		cat   tags.Category
		addrs int
		btc   float64
	}
	byName := make(map[string]*entity)
	for id := 0; id < p.Graph.NumAddrs(); id++ {
		svc, ok := p.Naming.ServiceOf(p.Refined, txgraph.AddrID(id))
		if !ok {
			continue
		}
		e := byName[svc]
		if e == nil {
			e = &entity{name: svc, cat: p.Naming.CategoryOf(p.Refined, txgraph.AddrID(id))}
			byName[svc] = e
		}
		e.addrs++
		e.btc += bal[id].ToBTC()
	}
	entities := make([]*entity, 0, len(byName))
	for _, e := range byName {
		entities = append(entities, e)
	}
	sort.Slice(entities, func(i, j int) bool {
		if entities[i].addrs != entities[j].addrs {
			return entities[i].addrs > entities[j].addrs
		}
		return entities[i].name < entities[j].name
	})
	t := &report.Table{
		Title:   "Named entities by footprint (the exchange-chokepoint premise)",
		Headers: []string{"entity", "category", "addresses", "balance (BTC)"},
	}
	for i, e := range entities {
		if i >= k {
			break
		}
		t.AddRow(e.name, e.cat.String(), e.addrs, report.BTC(e.btc))
	}
	t.Notes = append(t.Notes,
		"paper: \"the increasing dominance of a small number of Bitcoin institutions ... makes Bitcoin unattractive for high-volume illicit use\"")
	return t
}
