// P2P demo: Figure 1's transaction lifecycle over real TCP sockets — a
// merchant address, a signed payment broadcast through inv gossip, a mined
// block, and network-wide settlement. Run with no arguments.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/address"
	"repro/internal/chain"
	"repro/internal/p2p"
	"repro/internal/script"
)

func main() {
	params := chain.MainNetParams()
	params.TargetBits = 14
	params.CoinbaseMaturity = 1

	net, err := p2p.NewNetwork(p2p.Config{Params: params}, 6)
	if err != nil {
		log.Fatal(err)
	}
	defer net.Close()
	fmt.Println("6-node network listening on:")
	for i, n := range net.Nodes {
		fmt.Printf("  node %d: %s\n", i, n.Addr())
	}

	user := address.NewKeyFromSeed(7, 1)
	merchant := address.NewKeyFromSeed(7, 2)
	miner := address.NewKeyFromSeed(7, 3)
	userNode, minerNode := net.Nodes[0], net.Nodes[3]

	funding, err := minerNode.Mine(script.PayToAddr(user.Address()))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := minerNode.Mine(script.PayToAddr(miner.Address())); err != nil {
		log.Fatal(err)
	}
	if !net.WaitHeight(1, 10*time.Second) {
		log.Fatal("funding did not propagate")
	}

	subsidy := funding.Txs[0].Outputs[0].Value
	tx := &chain.Tx{
		Version: 1,
		Inputs:  []chain.TxIn{{Prev: chain.OutPoint{TxID: funding.Txs[0].TxID(), Index: 0}, Sequence: ^uint32(0)}},
		Outputs: []chain.TxOut{
			{Value: chain.BTC(0.7), PkScript: script.PayToAddr(merchant.Address())},
			{Value: subsidy - chain.BTC(0.7) - chain.BTC(0.001), PkScript: script.PayToAddr(user.Address())},
		},
	}
	sig := user.Sign(chain.SigHash(tx, 0))
	tx.Inputs[0].SigScript = script.SigScript(sig, user.PubKey())

	fmt.Printf("\nuser broadcasts 0.7 BTC payment %s\n", tx.TxID())
	if err := userNode.SubmitTx(tx); err != nil {
		log.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for minerNode.MempoolSize() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	blk, err := minerNode.Mine(script.PayToAddr(miner.Address()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("miner found block %s (nonce %d) with %d txs\n",
		blk.BlockHash(), blk.Header.Nonce, len(blk.Txs))
	if !net.WaitHeight(2, 10*time.Second) {
		fmt.Fprintln(os.Stderr, "block did not reach all nodes in time")
		os.Exit(1)
	}
	fmt.Println("payment settled on every node — Figure 1 complete")
}
