// Figure 2: compute the per-category balance time series — each service
// category's holdings as a percentage of active bitcoins — and render it as
// a table plus a coarse ASCII chart.
package main

import (
	"fmt"
	"log"
	"strings"

	fistful "repro"
)

func main() {
	fmt.Println("building pipeline (default scale)...")
	p, err := fistful.NewPipeline(fistful.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	tbl, series := p.Figure2(16)
	fmt.Println(tbl.Render())

	// ASCII sparkline per category, scaled to the series maximum.
	maxPct := 0.0
	for _, row := range series.SharePct {
		for _, v := range row {
			if v > maxPct {
				maxPct = v
			}
		}
	}
	if maxPct == 0 {
		return
	}
	glyphs := []rune(" .:-=+*#%@")
	fmt.Printf("trend (0 .. %.1f%% of active coins):\n", maxPct)
	for ci, cat := range series.Categories {
		var b strings.Builder
		for _, v := range series.SharePct[ci] {
			idx := int(v / maxPct * float64(len(glyphs)-1))
			b.WriteRune(glyphs[idx])
		}
		fmt.Printf("  %-11s |%s|\n", cat.String(), b.String())
	}
	fmt.Printf("\nactive coins at the end: %.0f BTC\n", series.ActiveBTC[len(series.ActiveBTC)-1])
}
