// Silk Road dissolution: reproduce the paper's Table 2 case study — follow
// the three peeling chains that emptied the marketplace's hot wallet and
// report which known services the peels reached.
package main

import (
	"fmt"
	"log"

	fistful "repro"
	"repro/internal/flow"
)

func main() {
	fmt.Println("building pipeline (default scale)...")
	p, err := fistful.NewPipeline(fistful.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	d := p.World.Dissolution
	fmt.Printf("hot wallet %s received %v (%.1f%% of minted supply)\n",
		d.HotAddr, d.TotalReceived, 100*d.SupplyShare)
	fmt.Printf("dissolved through %d withdrawals; final amount split into 3 chains\n\n",
		len(d.Withdrawals))

	// Follow each chain by hand, printing the per-hop peels the way an
	// investigator would read them.
	linker := flow.NewLabelLinker(p.Refined.ChangeLabels)
	namer := flow.NamingAdapter{Clusters: p.Refined, Naming: p.Naming}
	for ci := 0; ci < 3; ci++ {
		res := flow.FollowPeelingChain(p.Graph, d.ChainStarts[ci], p.World.Config.PeelHops, linker, namer)
		fmt.Printf("chain %d: followed %d hops (%s)\n", ci+1, res.Hops, res.Terminated)
		for _, peel := range res.Peels {
			if peel.Service == "" {
				continue
			}
			fmt.Printf("  hop %3d: %10.4f BTC -> %s (%s)\n",
				peel.Hop, peel.Amount.ToBTC(), peel.Service, peel.Cat)
		}
	}

	tbl, r := p.Table2()
	fmt.Println()
	fmt.Println(tbl.Render())
	fmt.Printf("exchange-bound peels: %d of %d hops (paper: 54 of 300)\n",
		r.ExchangePeels, r.HopsPerChain[0]+r.HopsPerChain[1]+r.HopsPerChain[2])
}
