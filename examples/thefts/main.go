// Theft tracking: reproduce the paper's Table 3 — follow each scripted
// theft's stolen coins forward, classify the thief's movements (aggregation,
// peeling, splitting, folding), and report whether the loot reached known
// exchanges.
package main

import (
	"fmt"
	"log"

	fistful "repro"
	"repro/internal/flow"
)

func main() {
	fmt.Println("building pipeline (default scale)...")
	p, err := fistful.NewPipeline(fistful.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	namer := flow.NamingAdapter{Clusters: p.Refined, Naming: p.Naming}
	for _, theft := range p.World.Thefts {
		rep := flow.TrackTheft(p.Graph, theft.TheftOutputs, namer, 400)
		fmt.Printf("%s (victim: %s)\n", theft.Name, orUsers(theft.Victim))
		fmt.Printf("  stolen:    %v (paper: %.0f BTC, scaled by %.4f)\n",
			theft.Amount, theft.PaperBTC, p.World.CaseScale)
		fmt.Printf("  movement:  %-12s (paper: %s)\n", orNone(rep.Movement), theft.Movement)
		if len(rep.ReachedExchanges) > 0 {
			fmt.Printf("  exchanges: %v received %v\n", rep.ReachedExchanges, rep.ExchangeTotal)
		} else {
			fmt.Printf("  exchanges: none reached\n")
		}
		if rep.Unmoved > 0 {
			fmt.Printf("  unmoved:   %v still sitting on the thief's addresses\n", rep.Unmoved)
		}
		fmt.Println()
	}
	tbl, _ := p.Table3()
	fmt.Println(tbl.Render())
}

func orUsers(s string) string {
	if s == "" {
		return "individual users"
	}
	return s
}

func orNone(s string) string {
	if s == "" {
		return "(none)"
	}
	return s
}
