// Quickstart: generate a small synthetic Bitcoin economy, cluster its
// addresses with the paper's two heuristics, and print who the biggest
// players are — the minimal end-to-end use of the library.
package main

import (
	"fmt"
	"log"
	"sort"

	fistful "repro"
	"repro/internal/txgraph"
)

func main() {
	cfg := fistful.SmallConfig()
	fmt.Println("generating a small synthetic economy...")
	p, err := fistful.NewPipeline(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chain: %d blocks, %d transactions, %d addresses\n",
		p.World.Chain.Height()+1, p.Graph.NumTxs(), p.Graph.NumAddrs())

	stats := p.Refined.ComputeStats()
	fmt.Printf("refined clustering: %d clusters of spenders, %d sinks, at most %d users\n",
		stats.SpenderClusters, stats.SinkAddresses, stats.MaxUsers)
	fmt.Printf("tagging named %d clusters covering %d addresses (%.0fx amplification)\n\n",
		p.Naming.NamedClusters, p.Naming.NamedAddresses, p.Naming.Amplification)

	// Rank named services by final balance.
	bal := p.Graph.Balances()
	type svcBal struct {
		name string
		btc  float64
	}
	totals := map[string]float64{}
	for id := 0; id < p.Graph.NumAddrs(); id++ {
		if svc, ok := p.Naming.ServiceOf(p.Refined, txgraph.AddrID(id)); ok {
			totals[svc] += bal[id].ToBTC()
		}
	}
	var ranked []svcBal
	for name, btc := range totals {
		ranked = append(ranked, svcBal{name, btc})
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].btc > ranked[j].btc })
	fmt.Println("largest identified holders:")
	for i, s := range ranked {
		if i >= 10 || s.btc < 1 {
			break
		}
		fmt.Printf("  %-28s %12.2f BTC\n", s.name, s.btc)
	}
}
