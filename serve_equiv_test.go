package fistful

import (
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/chain"
	"repro/internal/econ"
	"repro/internal/serve"
	"repro/internal/txgraph"
)

// The serve equivalence suite shares one small world; every test reads it.
var (
	equivOnce  sync.Once
	equivWorld *econ.World
)

func serveWorld(t *testing.T) *econ.World {
	t.Helper()
	equivOnce.Do(func() {
		cfg := SmallConfig()
		cfg.Blocks, cfg.Users = 300, 60
		w, err := econ.Generate(cfg)
		if err == nil {
			equivWorld = w
		}
	})
	if equivWorld == nil {
		t.Fatal("world generation failed")
	}
	return equivWorld
}

// prefixSource replays a block-slice prefix — "the chain as of height H".
type prefixSource struct {
	blocks []*chain.Block
	next   int
}

func (p *prefixSource) NextBlock() (*chain.Block, error) {
	if p.next >= len(p.blocks) {
		return nil, io.EOF
	}
	b := p.blocks[p.next]
	p.next++
	return b, nil
}

// batchAtHeight builds the batch reference for a chain prefix: the same
// graph build and analytic stages the real pipeline runs, through the
// pipelineFromGraph seam.
func batchAtHeight(t *testing.T, w *econ.World, height int64, workers int) *Pipeline {
	t.Helper()
	g, err := txgraph.BuildStream(&prefixSource{blocks: w.Chain.Blocks()[:height+1]}, workers)
	if err != nil {
		t.Fatalf("batch build at height %d: %v", height, err)
	}
	p, err := pipelineFromGraph(context.Background(), w, g, workers)
	if err != nil {
		t.Fatalf("batch pipeline at height %d: %v", height, err)
	}
	return p
}

// assertSnapshotMatchesBatch is the byte-identity contract: a snapshot
// published at height H answers exactly as a batch pipeline built over the
// same prefix — cluster labels, change labels and stats, naming, balances,
// and the Section 4.1 statistics.
func assertSnapshotMatchesBatch(t *testing.T, snap *serve.Snapshot, p *Pipeline) {
	t.Helper()
	g := p.Graph
	if snap.Height != g.Height() || snap.NumTxs != g.NumTxs() || snap.NumAddrs != g.NumAddrs() {
		t.Fatalf("snapshot shape (h=%d txs=%d addrs=%d) != batch (h=%d txs=%d addrs=%d)",
			snap.Height, snap.NumTxs, snap.NumAddrs, g.Height(), g.NumTxs(), g.NumAddrs())
	}
	for id := 0; id < g.NumAddrs(); id++ {
		aid := txgraph.AddrID(id)
		if snap.H1.ClusterOf(aid) != p.H1.ClusterOf(aid) {
			t.Fatalf("h=%d: H1 label of addr %d: serve %d, batch %d",
				snap.Height, id, snap.H1.ClusterOf(aid), p.H1.ClusterOf(aid))
		}
		if snap.Refined.ClusterOf(aid) != p.Refined.ClusterOf(aid) {
			t.Fatalf("h=%d: refined label of addr %d: serve %d, batch %d",
				snap.Height, id, snap.Refined.ClusterOf(aid), p.Refined.ClusterOf(aid))
		}
		if got, ok := snap.Lookup(g.Addr(aid)); !ok || got != aid {
			t.Fatalf("h=%d: snapshot lookup of addr %d = %d, %v", snap.Height, id, got, ok)
		}
	}
	if !reflect.DeepEqual(snap.Balances(), g.Balances()) {
		t.Fatalf("h=%d: balances differ", snap.Height)
	}
	if !reflect.DeepEqual(snap.Refined.ChangeLabels, p.Refined.ChangeLabels) {
		t.Fatalf("h=%d: change labels differ", snap.Height)
	}
	if snap.Refined.ChangeStats != p.Refined.ChangeStats {
		t.Fatalf("h=%d: change stats differ:\nserve %+v\nbatch %+v",
			snap.Height, snap.Refined.ChangeStats, p.Refined.ChangeStats)
	}
	if snap.H1.ComputeStats() != p.H1.ComputeStats() {
		t.Fatalf("h=%d: H1 stats differ:\nserve %+v\nbatch %+v",
			snap.Height, snap.H1.ComputeStats(), p.H1.ComputeStats())
	}
	if snap.Refined.ComputeStats() != p.Refined.ComputeStats() {
		t.Fatalf("h=%d: refined stats differ:\nserve %+v\nbatch %+v",
			snap.Height, snap.Refined.ComputeStats(), p.Refined.ComputeStats())
	}
	if !reflect.DeepEqual(snap.Naming, p.Naming) {
		t.Fatalf("h=%d: refined naming differs:\nserve %+v\nbatch %+v",
			snap.Height, snap.Naming, p.Naming)
	}
	if !reflect.DeepEqual(snap.NamingH1, p.NamingH1) {
		t.Fatalf("h=%d: H1 naming differs", snap.Height)
	}
}

// TestServeSnapshotEquivalence is the tentpole contract test: ingest the
// chain block by block, publish every publishEvery blocks, and prove each
// published snapshot answers identically to a batch pipeline built over the
// same prefix.
func TestServeSnapshotEquivalence(t *testing.T) {
	w := serveWorld(t)
	const workers, publishEvery = 2, 60

	ing := serve.NewIngester(analysisFromWorld(w, workers))
	blocks := w.Chain.Blocks()
	for h, b := range blocks {
		if err := ing.ApplyBlock(b); err != nil {
			t.Fatalf("apply height %d: %v", h, err)
		}
		if (h+1)%publishEvery == 0 || h == len(blocks)-1 {
			snap := ing.Publish()
			assertSnapshotMatchesBatch(t, snap, batchAtHeight(t, w, snap.Height, workers))
		}
	}
}

// TestServeConcurrentQueriesUnderIngest drives block appends on one
// goroutine while several others hammer snapshot queries — direct and over
// HTTP — through every published epoch. Under -race this proves the
// publish/read handoff is sound: readers always see a complete epoch, never
// a mid-apply state. The final snapshot is then checked against the batch
// pipeline, so the hammering happened over the same state machine the
// equivalence test pins.
func TestServeConcurrentQueriesUnderIngest(t *testing.T) {
	w := serveWorld(t)
	const workers = 2

	ing := serve.NewIngester(analysisFromWorld(w, workers))
	api := httptest.NewServer(serve.NewAPI(ing).Handler())
	defer api.Close()

	var stop atomic.Bool
	var wg sync.WaitGroup
	hammer := func(seed int64, body func(r *rand.Rand, s *serve.Snapshot)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				body(r, ing.Snapshot())
			}
		}()
	}
	// Direct snapshot readers: lookups, balances, labels, naming, stats.
	for i := 0; i < 3; i++ {
		hammer(int64(i), func(r *rand.Rand, s *serve.Snapshot) {
			if s.NumAddrs == 0 {
				return
			}
			id := txgraph.AddrID(r.Intn(s.NumAddrs))
			addr := s.Addr(id)
			got, ok := s.Lookup(addr)
			if !ok || got != id {
				t.Errorf("epoch %d: lookup(%s) = %d, %v; want %d", s.Epoch, addr, got, ok, id)
				return
			}
			label := s.Refined.ClusterOf(id)
			if size := s.Refined.ClusterSizes()[label]; size < 1 {
				t.Errorf("epoch %d: cluster %d of addr %d has size %d", s.Epoch, label, id, size)
			}
			if members := s.Refined.Members(label); len(members) == 0 {
				t.Errorf("epoch %d: cluster %d has no members", s.Epoch, label)
			}
			_ = s.Balance(id)
			_, _ = s.Naming.ClusterService[label]
			_ = s.H1.ComputeStats()
		})
	}
	// HTTP readers: the full handler path, JSON encoding included.
	hammer(99, func(r *rand.Rand, s *serve.Snapshot) {
		resp, err := http.Get(api.URL + "/v1/stats")
		if err != nil {
			t.Errorf("stats: %v", err)
			return
		}
		var st struct {
			Epoch  uint64 `json:"epoch"`
			Height int64  `json:"height"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Errorf("stats decode: %v", err)
		}
	})

	for h, b := range w.Chain.Blocks() {
		if err := ing.ApplyBlock(b); err != nil {
			t.Fatalf("apply height %d: %v", h, err)
		}
		if (h+1)%16 == 0 {
			ing.Publish()
		}
	}
	final := ing.Publish()
	stop.Store(true)
	wg.Wait()
	if t.Failed() {
		return
	}
	assertSnapshotMatchesBatch(t, final, batchAtHeight(t, w, final.Height, workers))

	// A snapshot retained from mid-ingest must still answer for its own
	// epoch — cheap spot check that hammered snapshots were never recycled.
	if got, ok := final.Lookup(final.Addr(0)); !ok || got != 0 {
		t.Fatal("final snapshot lookup broken")
	}
}
