package fistful

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/serve"
)

// TestChaosServeEquivalenceUnderFaults is the fault-tolerance tentpole
// contract: a daemon whose feed fails transiently dozens of times — scattered
// single faults plus one sustained burst long enough to trip degraded mode —
// must recover without exiting and converge to a snapshot that answers
// identically to the batch pipeline over the same prefix. While it runs, a
// poller watches /v1/readyz observe the degraded (503) and recovered (200)
// transitions. Run under -race, this also proves the health bookkeeping,
// publishes, and queries race cleanly with the retrying ingest loop.
func TestChaosServeEquivalenceUnderFaults(t *testing.T) {
	w := serveWorld(t)
	const workers = 2
	blocks := w.Chain.Blocks()

	// Two fault layers: every 7th poll fails in isolation (retry, no
	// degradation), and polls 150..161 fail consecutively — 12 failures
	// against a budget of 4 forces a degraded episode mid-ingest.
	inner := serve.NewSourceFeed(&prefixSource{blocks: blocks})
	scattered := faultinject.WrapFeed(inner, faultinject.NewEveryN(7), faultinject.FeedFaults{})
	feed := faultinject.WrapFeed(scattered, faultinject.NewBurst(150, 12), faultinject.FeedFaults{})

	ing := serve.NewIngester(analysisFromWorld(w, workers))
	d := serve.NewDaemonOpts(ing, feed, serve.DaemonOptions{
		PublishEvery: 32,
		Retry:        serve.RetryPolicy{Max: 4, BaseDelay: 5 * time.Millisecond, MaxDelay: 25 * time.Millisecond},
	})
	api := httptest.NewServer(serve.NewDaemonAPI(d).Handler())
	defer api.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d.Run(ctx) }()

	// Watch readiness transitions while the daemon fights through the faults.
	var (
		wg           sync.WaitGroup
		stopPoll     = make(chan struct{})
		mu           sync.Mutex
		sawDegraded  bool
		sawRecovered bool
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stopPoll:
				return
			case <-time.After(time.Millisecond):
			}
			resp, err := api.Client().Get(api.URL + "/v1/readyz")
			if err != nil {
				continue // server shutting down at test end
			}
			resp.Body.Close()
			mu.Lock()
			switch {
			case resp.StatusCode == http.StatusServiceUnavailable:
				sawDegraded = true
			case resp.StatusCode == http.StatusOK && sawDegraded:
				sawRecovered = true
			}
			mu.Unlock()
		}
	}()

	final := int64(len(blocks) - 1)
	deadline := time.Now().Add(2 * time.Minute)
	for d.Snapshot().Height != final {
		if time.Now().After(deadline) {
			t.Fatalf("daemon stuck at height %d under faults, want %d", d.Snapshot().Height, final)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stopPoll)
	wg.Wait()
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("daemon exited under transient faults: %v", err)
	}

	if scattered.Injected() == 0 || feed.Injected() == 0 {
		t.Fatalf("harness injected nothing (scattered=%d, burst=%d)", scattered.Injected(), feed.Injected())
	}
	h := d.Health()
	if h.TotalRetries < scattered.Injected()+feed.Injected() {
		t.Fatalf("TotalRetries = %d, want at least %d", h.TotalRetries, scattered.Injected()+feed.Injected())
	}
	if h.TimesDegraded < 1 {
		t.Fatalf("burst never tripped degraded: %+v", h)
	}
	if h.Degraded {
		t.Fatalf("daemon still degraded after convergence: %+v", h)
	}
	mu.Lock()
	defer mu.Unlock()
	if !sawDegraded || !sawRecovered {
		t.Fatalf("readyz transitions not observed (degraded=%v recovered=%v)", sawDegraded, sawRecovered)
	}

	// The decisive check: after all that, the snapshot answers exactly as a
	// batch pipeline built cold over the same prefix.
	assertSnapshotMatchesBatch(t, d.Snapshot(), batchAtHeight(t, w, final, workers))
}
